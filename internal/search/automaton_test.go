package search

import (
	"context"
	"errors"
	"iter"
	"math/rand"
	"testing"
	"testing/quick"

	"tgminer/internal/tgraph"
)

func TestConstraintsValidate(t *testing.T) {
	cases := []struct {
		name     string
		c        *Constraints
		numEdges int
		ok       bool
	}{
		{"nil", nil, 2, true},
		{"empty", &Constraints{}, 2, true},
		{"short-slice", &Constraints{Hops: []HopConstraint{{}}}, 3, true},
		{"gaps", &Constraints{Hops: []HopConstraint{{}, {MinGap: 2, MaxGap: 5}}}, 2, true},
		{"windows", &Constraints{Hops: []HopConstraint{{}, {After: 1, Within: 10}}}, 2, true},
		{"repeat", &Constraints{Hops: []HopConstraint{{}, {MinRepeat: 2, MaxRepeat: 4}}}, 2, true},
		{"optional-with-max", &Constraints{Hops: []HopConstraint{{}, {Optional: true, MaxRepeat: 3}}}, 2, true},
		{"too-many-hops", &Constraints{Hops: []HopConstraint{{}, {}, {}}}, 2, false},
		{"negative", &Constraints{Hops: []HopConstraint{{MinGap: -1}}}, 1, false},
		{"gap-inverted", &Constraints{Hops: []HopConstraint{{}, {MinGap: 5, MaxGap: 2}}}, 2, false},
		{"window-inverted", &Constraints{Hops: []HopConstraint{{}, {After: 9, Within: 3}}}, 2, false},
		{"optional-min-repeat", &Constraints{Hops: []HopConstraint{{}, {Optional: true, MinRepeat: 1}}}, 2, false},
		{"max-below-min", &Constraints{Hops: []HopConstraint{{}, {MinRepeat: 3, MaxRepeat: 2}}}, 2, false},
		{"hop0-optional", &Constraints{Hops: []HopConstraint{{Optional: true}}}, 1, false},
		{"hop0-after", &Constraints{Hops: []HopConstraint{{After: 2}}}, 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.Validate(tc.numEdges)
			if tc.ok && err != nil {
				t.Fatalf("Validate: unexpected error %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate accepted an invalid constraint set")
			}
		})
	}
}

func TestHopConstraintBounds(t *testing.T) {
	cases := []struct {
		h        HopConstraint
		min, max int
	}{
		{HopConstraint{}, 1, 1},
		{HopConstraint{Optional: true}, 0, 1},
		{HopConstraint{MinRepeat: 3}, 3, 3},
		{HopConstraint{MaxRepeat: 4}, 1, 4},
		{HopConstraint{MinRepeat: 2, MaxRepeat: 5}, 2, 5},
		{HopConstraint{Optional: true, MaxRepeat: 3}, 0, 3},
	}
	for _, tc := range cases {
		if mn, mx := tc.h.bounds(); mn != tc.min || mx != tc.max {
			t.Errorf("%+v bounds() = (%d, %d), want (%d, %d)", tc.h, mn, mx, tc.min, tc.max)
		}
	}
}

// invalidConstraintsSurfaceAsError pins the compile-error contract on all
// three engines: the stream's single element carries the validation error.
func TestInvalidConstraintsSurfaceAsError(t *testing.T) {
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	bad := Options{Constraints: &Constraints{Hops: []HopConstraint{{MinGap: -1}}}}
	var b tgraph.Builder
	b.AddNode(0)
	b.AddNode(1)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	live := NewLive(LiveOptions{})
	live.AddNode(0)
	live.AddNode(1)
	if err := live.Append(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	sharded := NewSharded(LiveOptions{Shards: 2})
	sharded.AddNode(0)
	sharded.AddNode(1)
	if err := sharded.Append(0, 1, 1); err != nil {
		t.Fatal(err)
	}

	for _, eng := range []temporalStreamer{NewEngine(g), live, sharded} {
		n, sawErr := 0, false
		for _, serr := range eng.StreamTemporal(context.Background(), p, bad) {
			n++
			if serr != nil {
				sawErr = true
			}
		}
		if n != 1 || !sawErr {
			t.Fatalf("%T: invalid constraints yielded %d elements (error: %v), want one terminal error", eng, n, sawErr)
		}
		_, cerr := (&collector{}).run(eng, p, bad)
		if cerr == nil {
			t.Fatalf("%T: collector saw no error", eng)
		}
	}
}

// --- constrained semantics, hand-pinned ------------------------------------

// chainHost builds A -(t1)-> B -(t2)-> C plus a second B -> C edge at t3,
// the minimal host where gap guards select among candidate continuations.
func chainHost(t *testing.T, times ...int64) *tgraph.Graph {
	t.Helper()
	var b tgraph.Builder
	b.AddNode(0) // A
	b.AddNode(1) // B
	b.AddNode(2) // C
	srcs := []tgraph.NodeID{0, 1, 1}
	dsts := []tgraph.NodeID{1, 2, 2}
	for i, tm := range times {
		if err := b.AddEdge(srcs[i%3], dsts[i%3], tm); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func chainPattern(t *testing.T) *tgraph.Pattern {
	t.Helper()
	p, err := tgraph.NewPattern([]tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConstrainedMaxGap(t *testing.T) {
	// A->B at 1; B->C at 2 and at 40. "C follows B within 30" admits only
	// the first continuation.
	g := chainHost(t, 1, 2, 40)
	p := chainPattern(t)
	eng := NewEngine(g)

	res := eng.FindTemporal(p, Options{})
	if len(res.Matches) != 2 {
		t.Fatalf("unconstrained: %v, want 2 matches", res.Matches)
	}
	res = eng.FindTemporal(p, Options{Constraints: &Constraints{Hops: []HopConstraint{{}, {MaxGap: 30}}}})
	if len(res.Matches) != 1 || res.Matches[0] != (Match{Start: 1, End: 2}) {
		t.Fatalf("maxGap 30: %v, want [{1 2}]", res.Matches)
	}
	res = eng.FindTemporal(p, Options{Constraints: &Constraints{Hops: []HopConstraint{{}, {MinGap: 10}}}})
	if len(res.Matches) != 1 || res.Matches[0] != (Match{Start: 1, End: 40}) {
		t.Fatalf("minGap 10: %v, want [{1 40}]", res.Matches)
	}
}

func TestConstrainedAfterWithin(t *testing.T) {
	g := chainHost(t, 1, 2, 40)
	p := chainPattern(t)
	eng := NewEngine(g)
	// after 5 relative to the match start excludes the early continuation.
	res := eng.FindTemporal(p, Options{Constraints: &Constraints{Hops: []HopConstraint{{}, {After: 5}}}})
	if len(res.Matches) != 1 || res.Matches[0] != (Match{Start: 1, End: 40}) {
		t.Fatalf("after 5: %v, want [{1 40}]", res.Matches)
	}
	// within 10 excludes the late one.
	res = eng.FindTemporal(p, Options{Constraints: &Constraints{Hops: []HopConstraint{{}, {Within: 10}}}})
	if len(res.Matches) != 1 || res.Matches[0] != (Match{Start: 1, End: 2}) {
		t.Fatalf("within 10: %v, want [{1 2}]", res.Matches)
	}
}

func TestConstrainedOptionalHop(t *testing.T) {
	// Host has A->B at 1 but no B->C at all: the two-hop pattern with an
	// optional second hop still matches the bare A->B.
	g := chainHost(t, 1)
	p := chainPattern(t)
	eng := NewEngine(g)
	if res := eng.FindTemporal(p, Options{}); len(res.Matches) != 0 {
		t.Fatalf("unconstrained on truncated host: %v, want none", res.Matches)
	}
	res := eng.FindTemporal(p, Options{Constraints: &Constraints{Hops: []HopConstraint{{}, {Optional: true}}}})
	if len(res.Matches) != 1 || res.Matches[0] != (Match{Start: 1, End: 1}) {
		t.Fatalf("optional hop: %v, want [{1 1}]", res.Matches)
	}
	// With the continuation present, both the short and the long embedding
	// are distinct intervals.
	g = chainHost(t, 1, 2)
	eng = NewEngine(g)
	res = eng.FindTemporal(p, Options{Constraints: &Constraints{Hops: []HopConstraint{{}, {Optional: true}}}})
	want := []Match{{Start: 1, End: 1}, {Start: 1, End: 2}}
	if len(res.Matches) != 2 || res.Matches[0] != want[0] || res.Matches[1] != want[1] {
		t.Fatalf("optional hop with continuation: %v, want %v", res.Matches, want)
	}
}

func TestConstrainedRepetition(t *testing.T) {
	// A->B once, then B->C at 2, 3, 4: parallel edges in time order.
	var b tgraph.Builder
	b.AddNode(0)
	b.AddNode(1)
	b.AddNode(2)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	for tm := int64(2); tm <= 4; tm++ {
		if err := b.AddEdge(1, 2, tm); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	p := chainPattern(t)
	eng := NewEngine(g)

	// Exactly 2 repeats: runs of two consecutive B->C edges.
	res := eng.FindTemporal(p, Options{Constraints: &Constraints{Hops: []HopConstraint{{}, {MinRepeat: 2}}}})
	want := []Match{{Start: 1, End: 3}, {Start: 1, End: 4}}
	if len(res.Matches) != 2 || res.Matches[0] != want[0] || res.Matches[1] != want[1] {
		t.Fatalf("minRepeat 2: %v, want %v", res.Matches, want)
	}
	// 1..3 repeats: every prefix-extension interval is distinct.
	res = eng.FindTemporal(p, Options{Constraints: &Constraints{Hops: []HopConstraint{{}, {MaxRepeat: 3}}}})
	if len(res.Matches) != 3 {
		t.Fatalf("maxRepeat 3: %v, want ends 2,3,4", res.Matches)
	}
	// Gap guards apply per occurrence: maxGap 1 forbids skipping an
	// intermediate B->C, so End 4 needs all three occurrences.
	res = eng.FindTemporal(p, Options{Constraints: &Constraints{Hops: []HopConstraint{{}, {MaxRepeat: 3, MaxGap: 1}}}})
	for _, m := range res.Matches {
		if m == (Match{Start: 1, End: 4}) {
			return
		}
	}
	t.Fatalf("maxRepeat 3 + maxGap 1: %v missing the full run {1 4}", res.Matches)
}

// --- brute-force oracle -----------------------------------------------------

// bruteConstrainedIntervals enumerates every way to expand the constrained
// pattern into a concrete edge sequence (each hop repeated an admissible
// number of times) and every increasing host-position assignment for it,
// checking labels, injectivity, and the temporal guards independently of the
// compiler's loTime/hiTime formulas.
func bruteConstrainedIntervals(p *tgraph.Pattern, c *Constraints, g *tgraph.Graph, window int64) map[Match]bool {
	out := map[Match]bool{}
	n := p.NumEdges()
	hop := func(i int) HopConstraint {
		if c != nil && i < len(c.Hops) {
			return c.Hops[i]
		}
		return HopConstraint{}
	}
	var seq []int
	var expand func(i int)
	expand = func(i int) {
		if i == n {
			bruteMatchSeq(p, g, c, seq, window, out)
			return
		}
		h := hop(i)
		// Resolve the occurrence interval from the raw fields, independently
		// of HopConstraint.bounds.
		mn := 1
		if h.Optional {
			mn = 0
		}
		if h.MinRepeat > 0 {
			mn = h.MinRepeat
		}
		mx := h.MaxRepeat
		if mx == 0 {
			mx = mn
			if mx < 1 {
				mx = 1
			}
		}
		for cnt := mn; cnt <= mx; cnt++ {
			for j := 0; j < cnt; j++ {
				seq = append(seq, i)
			}
			expand(i + 1)
			seq = seq[:len(seq)-cnt]
		}
	}
	expand(0)
	return out
}

func bruteMatchSeq(p *tgraph.Pattern, g *tgraph.Graph, c *Constraints, seq []int, window int64, out map[Match]bool) {
	m, n2 := len(seq), g.NumEdges()
	if m == 0 || m > n2 {
		return
	}
	idx := make([]int, m)
	var rec func(k, from int)
	rec = func(k, from int) {
		if k == m {
			if mt, ok := checkConstrainedAssignment(p, g, c, seq, idx, window); ok {
				out[mt] = true
			}
			return
		}
		for pos := from; pos <= n2-(m-k); pos++ {
			idx[k] = pos
			rec(k+1, pos+1)
		}
	}
	rec(0, 0)
}

func checkConstrainedAssignment(p *tgraph.Pattern, g *tgraph.Graph, c *Constraints, seq, idx []int, window int64) (Match, bool) {
	fwd := map[tgraph.NodeID]tgraph.NodeID{}
	rev := map[tgraph.NodeID]tgraph.NodeID{}
	bind := func(a, b tgraph.NodeID) bool {
		if p.LabelOf(a) != g.LabelOf(b) {
			return false
		}
		fa, okA := fwd[a]
		rb, okB := rev[b]
		if !okA && !okB {
			fwd[a] = b
			rev[b] = a
			return true
		}
		return okA && okB && fa == b && rb == a
	}
	start := g.EdgeAt(idx[0]).Time
	for j, pos := range idx {
		pe := p.EdgeAt(seq[j])
		ge := g.EdgeAt(pos)
		if !bind(pe.Src, ge.Src) || !bind(pe.Dst, ge.Dst) {
			return Match{}, false
		}
		if j == 0 {
			continue // the anchor occurrence has no previous edge to guard on
		}
		prev := g.EdgeAt(idx[j-1]).Time
		var h HopConstraint
		if c != nil && seq[j] < len(c.Hops) {
			h = c.Hops[seq[j]]
		}
		t := ge.Time
		if h.MinGap > 0 && t-prev < h.MinGap {
			return Match{}, false
		}
		if h.MaxGap > 0 && t-prev > h.MaxGap {
			return Match{}, false
		}
		if h.After > 0 && t-start < h.After {
			return Match{}, false
		}
		if h.Within > 0 && t-start > h.Within {
			return Match{}, false
		}
	}
	end := g.EdgeAt(idx[len(idx)-1]).Time
	if window > 0 && end-start+1 > window {
		return Match{}, false
	}
	return Match{Start: start, End: end}, true
}

// randomConstraints draws a valid-by-construction constraint set for a
// pattern with numEdges edges, mixing gap guards, start windows, optional
// hops, and small repetitions. Roughly a third of the draws are nil.
func randomConstraints(rng *rand.Rand, numEdges int) *Constraints {
	if numEdges == 0 || rng.Intn(3) == 0 {
		return nil
	}
	hops := make([]HopConstraint, 1+rng.Intn(numEdges))
	for i := range hops {
		h := &hops[i]
		if rng.Intn(2) == 0 {
			h.MaxGap = int64(1 + rng.Intn(6))
		}
		if rng.Intn(3) == 0 {
			h.MinGap = int64(1 + rng.Intn(3))
			if h.MaxGap > 0 && h.MinGap > h.MaxGap {
				h.MaxGap = h.MinGap
			}
		}
		if i > 0 {
			if rng.Intn(4) == 0 {
				h.Within = int64(2 + rng.Intn(10))
			}
			if rng.Intn(5) == 0 {
				h.After = int64(1 + rng.Intn(3))
				if h.Within > 0 && h.After > h.Within {
					h.Within = h.After
				}
			}
			if rng.Intn(5) == 0 {
				h.Optional = true
			}
		}
		switch {
		case rng.Intn(6) == 0 && !h.Optional:
			h.MinRepeat = 1 + rng.Intn(2)
			h.MaxRepeat = h.MinRepeat + rng.Intn(2)
		case rng.Intn(6) == 0:
			h.MaxRepeat = 1 + rng.Intn(2)
		}
	}
	return &Constraints{Hops: hops}
}

// TestConstrainedMatchesBruteForceQuick is the tentpole's semantic
// acceptance property: the compiled-program engine agrees with the
// independent brute-force oracle on random hosts, patterns, and constraint
// sets.
func TestConstrainedMatchesBruteForceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomHost(rng, 4+rng.Intn(3), 6+rng.Intn(4), 3)
		p := randomQuery(rng, 3, 3)
		c := randomConstraints(rng, p.NumEdges())
		if err := c.Validate(p.NumEdges()); err != nil {
			t.Fatalf("seed=%d: randomConstraints drew an invalid set: %v", seed, err)
		}
		var window int64
		if rng.Intn(2) == 0 {
			window = int64(3 + rng.Intn(12))
		}
		eng := NewEngine(g)
		got := eng.FindTemporal(p, Options{Window: window, Constraints: c})
		want := bruteConstrainedIntervals(p, c, g, window)
		if len(got.Matches) != len(want) {
			t.Logf("seed=%d: got %d intervals, want %d (window=%d)\n c=%+v\n p=%v\n g=%v",
				seed, len(got.Matches), len(want), window, c, p, g)
			return false
		}
		for _, m := range got.Matches {
			if !want[m] {
				t.Logf("seed=%d: unexpected interval %v (c=%+v)", seed, m, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// --- cross-engine stream identity ------------------------------------------

// temporalStreamer is the yield-based temporal query surface all three
// engines share: each drives the same compiled program.
type temporalStreamer interface {
	StreamTemporal(ctx context.Context, p *tgraph.Pattern, opts Options) iter.Seq2[Match, error]
}

// collector drains a temporal stream preserving discovery order, folding
// ErrTruncated into the Truncated flag exactly as the Find wrappers do.
type collector struct{}

func (collector) run(s temporalStreamer, p *tgraph.Pattern, opts Options) (Result, error) {
	var res Result
	var rerr error
	for m, err := range s.StreamTemporal(context.Background(), p, opts) {
		switch {
		case errors.Is(err, ErrTruncated):
			res.Truncated = true
		case err != nil:
			rerr = err
		default:
			res.Matches = append(res.Matches, m)
		}
	}
	return res, rerr
}

// TestZeroConstraintsIdentical is the refactor's acceptance property: a nil
// Constraints, an empty Constraints, and an all-zero Hops slice reproduce
// the unconstrained matcher byte-identically — same matches, same discovery
// order, same Truncated accounting — on the static, live, and sharded
// engines, replayed across the adversarial append/evict/compact
// interleavings.
func TestZeroConstraintsIdentical(t *testing.T) {
	for _, sc := range adversarialScripts() {
		t.Run(sc.name, func(t *testing.T) {
			live := NewLive(LiveOptions{CompactEvery: -1})
			sharded := NewSharded(LiveOptions{CompactEvery: -1, Shards: 3})
			var labels []tgraph.Label
			var edges []tgraph.Edge
			minTime := int64(0)
			for i, op := range sc.ops {
				replayOp(t, live, op)
				replayOp(t, sharded, op)
				switch op.kind {
				case 'n':
					labels = append(labels, op.label)
				case 'e':
					edges = append(edges, tgraph.Edge{Src: op.src, Dst: op.dst, Time: op.t})
				case 'v':
					if op.t > minTime {
						minTime = op.t
					}
				}
				static := staticEquivalent(t, labels, edges, minTime)
				rng := rand.New(rand.NewSource(int64(i) + 1))
				for q := 0; q < 3; q++ {
					p := randomQuery(rng, 3, 2)
					opts := Options{}
					if rng.Intn(2) == 0 {
						opts.Window = int64(2 + rng.Intn(10))
					}
					if rng.Intn(3) == 0 {
						opts.Limit = 1 + rng.Intn(3)
					}
					zeroed := []Options{opts, opts, opts}
					zeroed[1].Constraints = &Constraints{}
					zeroed[2].Constraints = &Constraints{Hops: make([]HopConstraint, p.NumEdges())}
					for _, eng := range []temporalStreamer{static, live, sharded} {
						base, err := collector{}.run(eng, p, zeroed[0])
						if err != nil {
							t.Fatalf("op %d %T: %v", i, eng, err)
						}
						for v := 1; v < len(zeroed); v++ {
							got, err := collector{}.run(eng, p, zeroed[v])
							if err != nil {
								t.Fatalf("op %d %T variant %d: %v", i, eng, v, err)
							}
							if err := sameResult(got, base); err != nil {
								t.Fatalf("op %d %T variant %d: zero constraints diverge from nil: %v", i, eng, v, err)
							}
						}
					}
				}
			}
		})
	}
}

// TestConstrainedCrossEngineParity pins constrained queries equal across
// static == live == sharded, in stream order, over random hosts and
// constraint sets — the same-cut differential the serve layer then extends
// over HTTP.
func TestConstrainedCrossEngineParity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numLabels := 3
		nodes := 4 + rng.Intn(3)
		live := NewLive(LiveOptions{CompactEvery: []int{-1, 2, 3}[rng.Intn(3)]})
		sharded := NewSharded(LiveOptions{CompactEvery: []int{-1, 2, 3}[rng.Intn(3)], Shards: 2 + rng.Intn(3)})
		var labels []tgraph.Label
		var edges []tgraph.Edge
		for i := 0; i < nodes; i++ {
			lab := tgraph.Label(rng.Intn(numLabels))
			labels = append(labels, lab)
			live.AddNode(lab)
			sharded.AddNode(lab)
		}
		tm := int64(0)
		for i := 0; i < 10+rng.Intn(6); i++ {
			src := tgraph.NodeID(rng.Intn(nodes))
			dst := tgraph.NodeID(rng.Intn(nodes))
			tm += int64(1 + rng.Intn(3))
			if err := live.Append(src, dst, tm); err != nil {
				t.Fatal(err)
			}
			if err := sharded.Append(src, dst, tm); err != nil {
				t.Fatal(err)
			}
			edges = append(edges, tgraph.Edge{Src: src, Dst: dst, Time: tm})
		}
		static := staticEquivalent(t, labels, edges, 0)
		for q := 0; q < 4; q++ {
			p := randomQuery(rng, 3, numLabels)
			opts := Options{Constraints: randomConstraints(rng, p.NumEdges())}
			if rng.Intn(2) == 0 {
				opts.Window = int64(2 + rng.Intn(10))
			}
			if rng.Intn(4) == 0 {
				opts.Limit = 1 + rng.Intn(3)
			}
			want, err := collector{}.run(static, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range []temporalStreamer{live, sharded} {
				got, err := collector{}.run(eng, p, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := sameResult(got, want); err != nil {
					t.Logf("seed=%d q=%d %T: %v (constraints %+v)", seed, q, eng, err, opts.Constraints)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
