package seqcode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tgminer/internal/tgraph"
)

func mustPattern(t *testing.T, labels []tgraph.Label, edges []tgraph.PEdge) *tgraph.Pattern {
	t.Helper()
	p, err := tgraph.NewPattern(labels, edges)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNodeSeqFirstVisitOrder(t *testing.T) {
	// Edges: (2->0), (0->1): first-visit order is 2, 0, 1.
	p := mustPattern(t, []tgraph.Label{10, 11, 12}, []tgraph.PEdge{{Src: 2, Dst: 0}, {Src: 0, Dst: 1}})
	got := NodeSeq(p)
	want := []tgraph.NodeID{2, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("NodeSeq = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NodeSeq = %v, want %v", got, want)
		}
	}
}

func TestNodeSeqEachNodeOnce(t *testing.T) {
	p := mustPattern(t, []tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 0, Dst: 1}})
	got := NodeSeq(p)
	if len(got) != 2 {
		t.Fatalf("NodeSeq = %v, want 2 entries", got)
	}
}

func TestEnhSeqSkipRules(t *testing.T) {
	// Chain a->b, b->c: after edge 1 enhseq = [a b]; edge 2's source b is the
	// last added node, so it is skipped: enhseq = [a b c].
	p := mustPattern(t, []tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	got := EnhSeq(p)
	want := []tgraph.NodeID{0, 1, 2}
	assertSeq(t, got, want)

	// Fan-out a->b, a->c: edge 2's source a is the source of the previous
	// edge, so it is skipped: enhseq = [a b c].
	p = mustPattern(t, []tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}})
	assertSeq(t, EnhSeq(p), []tgraph.NodeID{0, 1, 2})

	// a->b, c->b: edge 2's source c is new: enhseq = [a b c b].
	p = mustPattern(t, []tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}})
	assertSeq(t, EnhSeq(p), []tgraph.NodeID{0, 1, 2, 1})

	// a->b, b->a: source b is last added: enhseq = [a b a].
	p = mustPattern(t, []tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}})
	assertSeq(t, EnhSeq(p), []tgraph.NodeID{0, 1, 0})
}

func assertSeq(t *testing.T, got, want []tgraph.NodeID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("seq = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seq = %v, want %v", got, want)
		}
	}
}

func TestSubsumesChainInChain(t *testing.T) {
	small := mustPattern(t, []tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	big := mustPattern(t, []tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if m, ok := Subsumes(small, big); !ok {
		t.Fatalf("1-edge not found in 2-chain")
	} else if m[0] != 0 || m[1] != 1 {
		t.Errorf("mapping = %v, want [0 1]", m)
	}
	if _, ok := Subsumes(big, small); ok {
		t.Errorf("2-chain found in 1-edge")
	}
}

func TestSubsumesRespectsTemporalOrder(t *testing.T) {
	// Pattern B->C then A->B; host has A->B then B->C: same topology but the
	// temporal order differs, so the pattern must NOT embed.
	pat := mustPattern(t, []tgraph.Label{1, 2, 0}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 2, Dst: 0}})
	host := mustPattern(t, []tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if _, ok := Subsumes(pat, host); ok {
		t.Errorf("temporal order violated: reversed pattern embedded")
	}
	// The correctly ordered pattern embeds.
	pat2 := mustPattern(t, []tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if _, ok := Subsumes(pat2, host); !ok {
		t.Errorf("identical pattern failed to embed")
	}
}

func TestSubsumesMultiEdge(t *testing.T) {
	// Host has two parallel A->B edges; pattern wants both.
	host := mustPattern(t, []tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}})
	pat := mustPattern(t, []tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}})
	if _, ok := Subsumes(pat, host); !ok {
		t.Errorf("multi-edge pattern failed to embed in multi-edge host")
	}
	one := mustPattern(t, []tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if _, ok := Subsumes(one, host); !ok {
		t.Errorf("single edge failed to embed in multi-edge host")
	}
}

func TestSubsumesSelfLoop(t *testing.T) {
	loop := mustPattern(t, []tgraph.Label{0}, []tgraph.PEdge{{Src: 0, Dst: 0}})
	hostLoop := mustPattern(t, []tgraph.Label{1, 0}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 1}})
	if _, ok := Subsumes(loop, hostLoop); !ok {
		t.Errorf("self loop not found in host with self loop")
	}
	hostPlain := mustPattern(t, []tgraph.Label{0, 0}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if _, ok := Subsumes(loop, hostPlain); ok {
		t.Errorf("self loop matched a non-loop edge")
	}
}

func TestSubsumesInjectivity(t *testing.T) {
	// Pattern A->B, A->B with two distinct B nodes requires two distinct B
	// nodes in the host.
	pat := mustPattern(t, []tgraph.Label{0, 1, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}})
	hostOneB := mustPattern(t, []tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}})
	if _, ok := Subsumes(pat, hostOneB); ok {
		t.Errorf("two pattern nodes mapped to one host node")
	}
	hostTwoB := mustPattern(t, []tgraph.Label{0, 1, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}})
	if _, ok := Subsumes(pat, hostTwoB); !ok {
		t.Errorf("pattern failed to embed in isomorphic host")
	}
}

func TestFigure9Example(t *testing.T) {
	// Reconstruction of the Figure 9 narrative: nodeseq(g1) is not a plain
	// subsequence of nodeseq(g2), but it is of enhseq(g2), and the induced
	// mapping passes the edge test. We build host g2 where a destination is
	// revisited later than its first visit.
	// g2: A(0)->B(1), B(1)->E(2), C(3)->A(4), A(4)->B(5), B(5)->E(6), D(7)->E(6)
	labels2 := []tgraph.Label{'A', 'B', 'E', 'C', 'A', 'B', 'E', 'D'}
	edges2 := []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 6}, {Src: 7, Dst: 6}}
	g2 := mustPattern(t, labels2, edges2)
	// g1: A->B, B->E, D->E, matching the tail of g2 (nodes 4,5,6,7).
	labels1 := []tgraph.Label{'A', 'B', 'E', 'D'}
	edges1 := []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 2}}
	g1 := mustPattern(t, labels1, edges1)
	m, ok := Subsumes(g1, g2)
	if !ok {
		t.Fatalf("g1 should embed in g2")
	}
	// Verify the mapping is a genuine temporal embedding.
	if !validEmbedding(g1, g2, m) {
		t.Errorf("returned mapping %v is not a valid embedding", m)
	}
}

// validEmbedding verifies mapping m as a temporal embedding of g1 into g2.
func validEmbedding(g1, g2 *tgraph.Pattern, m []tgraph.NodeID) bool {
	seen := map[tgraph.NodeID]bool{}
	for v1, v2 := range m {
		if v2 == -1 {
			continue
		}
		if g1.LabelOf(tgraph.NodeID(v1)) != g2.LabelOf(v2) {
			return false
		}
		if seen[v2] {
			return false
		}
		seen[v2] = true
	}
	// Greedy check that the mapped edge sequence is a subsequence of g2's.
	i := 0
	e1, e2 := g1.Edges(), g2.Edges()
	for j := 0; i < len(e1) && j < len(e2); j++ {
		if m[e1[i].Src] == e2[j].Src && m[e1[i].Dst] == e2[j].Dst {
			i++
		}
	}
	return i == len(e1)
}

// bruteSubsumes is an independent oracle: choose every increasing |E1|-subset
// of g2's edge positions and check the induced node mapping.
func bruteSubsumes(g1, g2 *tgraph.Pattern) bool {
	n1, n2 := g1.NumEdges(), g2.NumEdges()
	if n1 > n2 {
		return false
	}
	idx := make([]int, n1)
	var rec func(k, from int) bool
	rec = func(k, from int) bool {
		if k == n1 {
			return consistent(g1, g2, idx)
		}
		for p := from; p <= n2-(n1-k); p++ {
			idx[k] = p
			if rec(k+1, p+1) {
				return true
			}
		}
		return false
	}
	if n1 == 0 {
		return g1.NumNodes() <= g2.NumNodes()
	}
	return rec(0, 0)
}

func consistent(g1, g2 *tgraph.Pattern, idx []int) bool {
	fwd := make(map[tgraph.NodeID]tgraph.NodeID)
	rev := make(map[tgraph.NodeID]tgraph.NodeID)
	bind := func(a, b tgraph.NodeID) bool {
		if g1.LabelOf(a) != g2.LabelOf(b) {
			return false
		}
		fa, okA := fwd[a]
		rb, okB := rev[b]
		if !okA && !okB {
			fwd[a] = b
			rev[b] = a
			return true
		}
		return okA && okB && fa == b && rb == a
	}
	for i, p := range idx {
		pe := g1.EdgeAt(i)
		ge := g2.EdgeAt(p)
		if !bind(pe.Src, ge.Src) || !bind(pe.Dst, ge.Dst) {
			return false
		}
	}
	return true
}

func randomPattern(rng *rand.Rand, maxEdges, labelRange int) *tgraph.Pattern {
	p := tgraph.SingleEdgePattern(tgraph.Label(rng.Intn(labelRange)), tgraph.Label(rng.Intn(labelRange)), rng.Intn(8) == 0)
	m := 1 + rng.Intn(maxEdges)
	for p.NumEdges() < m {
		switch rng.Intn(3) {
		case 0:
			p = p.GrowForward(tgraph.NodeID(rng.Intn(p.NumNodes())), tgraph.Label(rng.Intn(labelRange)))
		case 1:
			p = p.GrowBackward(tgraph.Label(rng.Intn(labelRange)), tgraph.NodeID(rng.Intn(p.NumNodes())))
		default:
			p = p.GrowInward(tgraph.NodeID(rng.Intn(p.NumNodes())), tgraph.NodeID(rng.Intn(p.NumNodes())))
		}
	}
	return p
}

func TestSubsumesMatchesBruteForceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1 := randomPattern(rng, 4, 2)
		g2 := randomPattern(rng, 7, 2)
		m, got := Subsumes(g1, g2)
		want := bruteSubsumes(g1, g2)
		if got != want {
			t.Logf("seed=%d g1=%v g2=%v got=%v want=%v", seed, g1, g2, got, want)
			return false
		}
		if got && !validEmbedding(g1, g2, m) {
			t.Logf("seed=%d invalid embedding %v", seed, m)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestSubsumesSupergraphAlwaysContains(t *testing.T) {
	// Growing a pattern always yields a host that subsumes the original.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 150; i++ {
		g1 := randomPattern(rng, 5, 3)
		g2 := g1
		for j := 0; j < 1+rng.Intn(4); j++ {
			switch rng.Intn(3) {
			case 0:
				g2 = g2.GrowForward(tgraph.NodeID(rng.Intn(g2.NumNodes())), tgraph.Label(rng.Intn(3)))
			case 1:
				g2 = g2.GrowBackward(tgraph.Label(rng.Intn(3)), tgraph.NodeID(rng.Intn(g2.NumNodes())))
			default:
				g2 = g2.GrowInward(tgraph.NodeID(rng.Intn(g2.NumNodes())), tgraph.NodeID(rng.Intn(g2.NumNodes())))
			}
		}
		if _, ok := Subsumes(g1, g2); !ok {
			t.Fatalf("grown supergraph does not contain original:\n g1=%v\n g2=%v", g1, g2)
		}
	}
}

func TestTesterStats(t *testing.T) {
	var tester Tester
	g1 := mustPattern(t, []tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	g2 := mustPattern(t, []tgraph.Label{0, 1, 2}, []tgraph.PEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	if _, ok := tester.Test(g1, g2); !ok {
		t.Fatalf("embed failed")
	}
	if tester.Stats.Tests != 1 {
		t.Errorf("Tests = %d, want 1", tester.Stats.Tests)
	}
	// A label-impossible test should hit the label-sequence pruner.
	g3 := mustPattern(t, []tgraph.Label{9, 9}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if _, ok := tester.Test(g3, g2); ok {
		t.Fatalf("impossible embed succeeded")
	}
	if tester.Stats.LabelSeqRejects == 0 {
		t.Errorf("label-sequence pruner never triggered")
	}
}

func TestEmptyPatternEmbeds(t *testing.T) {
	empty := mustPattern(t, []tgraph.Label{0}, nil)
	host := mustPattern(t, []tgraph.Label{0, 1}, []tgraph.PEdge{{Src: 0, Dst: 1}})
	if _, ok := Subsumes(empty, host); !ok {
		t.Errorf("empty pattern should embed")
	}
}
