// Package seqcode implements the sequence-based temporal graph encoding and
// the subsequence-test-based temporal subgraph test of Section 4.3 and
// Lemma 5 of the TGMiner paper (Zong et al., VLDB 2015).
//
// A temporal graph pattern is encoded as
//
//   - a node sequence (nodes in first-visit order of the timestamp-ordered
//     edge walk),
//   - an edge sequence (edges in timestamp order), and
//   - an enhanced node sequence that repeats nodes so that any temporal
//     subgraph's node sequence embeds as a subsequence.
//
// g1 ⊆t g2 holds iff some injective node mapping fs embeds nodeseq(g1) into
// enhseq(g2) as a subsequence and fs(edgeseq(g1)) is a subsequence of
// edgeseq(g2). The mapping search uses the three pruning techniques of
// Appendix J: label-sequence tests, local-information matching, and prefix
// pruning.
package seqcode

import (
	"tgminer/internal/tgraph"
)

// NodeSeq returns the nodes of p ordered by first visit when traversing
// edges in timestamp order (source before destination within an edge). Each
// node appears exactly once; isolated nodes do not appear.
func NodeSeq(p *tgraph.Pattern) []tgraph.NodeID {
	seen := make([]bool, p.NumNodes())
	out := make([]tgraph.NodeID, 0, p.NumNodes())
	for _, e := range p.Edges() {
		if !seen[e.Src] {
			seen[e.Src] = true
			out = append(out, e.Src)
		}
		if !seen[e.Dst] {
			seen[e.Dst] = true
			out = append(out, e.Dst)
		}
	}
	return out
}

// EnhSeq returns the enhanced node sequence of p. Processing each edge
// (u, v) in timestamp order: u is appended unless it is the node appended
// last or the source of the previously processed edge; v is always appended.
// Nodes may therefore appear multiple times.
func EnhSeq(p *tgraph.Pattern) []tgraph.NodeID {
	out := make([]tgraph.NodeID, 0, 2*p.NumEdges())
	lastSrc := tgraph.NodeID(-1)
	for _, e := range p.Edges() {
		skip := false
		if len(out) > 0 && out[len(out)-1] == e.Src {
			skip = true
		}
		if e.Src == lastSrc {
			skip = true
		}
		if !skip {
			out = append(out, e.Src)
		}
		out = append(out, e.Dst)
		lastSrc = e.Src
	}
	return out
}

// labelsOf projects a node sequence to its labels.
func labelsOf(p *tgraph.Pattern, seq []tgraph.NodeID) []tgraph.Label {
	out := make([]tgraph.Label, len(seq))
	for i, v := range seq {
		out[i] = p.LabelOf(v)
	}
	return out
}

// isLabelSubsequence reports whether a is a subsequence of b.
func isLabelSubsequence(a, b []tgraph.Label) bool {
	i := 0
	for j := 0; i < len(a) && j < len(b); j++ {
		if a[i] == b[j] {
			i++
		}
	}
	return i == len(a)
}

// Stats counts the work performed by Subsumes calls; useful for ablation
// benchmarks. Counters are only advanced when a *Tester is used.
type Stats struct {
	Tests           int64 // Subsumes invocations
	LabelSeqRejects int64 // rejected by the label-sequence pre-test
	MappingsTried   int64 // candidate node bindings attempted
	PrefixPrunes    int64 // searches cut by prefix pruning
	EdgeChecks      int64 // full edge-subsequence verifications
}

// Tester performs temporal subgraph tests with the Appendix J pruners and
// records Stats. The zero value is ready to use. Not safe for concurrent
// use.
type Tester struct {
	Stats Stats
}

// Name identifies the tester in benchmark output.
func (t *Tester) Name() string { return "seqcode" }

// CloneTester returns a fresh Tester for a parallel mining worker (the
// miner's optional per-worker instantiation hook).
func (t *Tester) CloneTester() any { return &Tester{} }

// Test reports whether g1 ⊆t g2 and, if so, returns the node mapping from g1
// nodes to g2 nodes (indexed by g1 NodeID; -1 for isolated g1 nodes).
func (t *Tester) Test(g1, g2 *tgraph.Pattern) ([]tgraph.NodeID, bool) {
	t.Stats.Tests++
	return subsumes(g1, g2, &t.Stats)
}

// Subsumes reports whether g1 ⊆t g2 using a throwaway stats sink.
func Subsumes(g1, g2 *tgraph.Pattern) ([]tgraph.NodeID, bool) {
	var s Stats
	return subsumes(g1, g2, &s)
}

func subsumes(g1, g2 *tgraph.Pattern, stats *Stats) ([]tgraph.NodeID, bool) {
	if g1.NumEdges() > g2.NumEdges() || g1.NumNodes() > g2.NumNodes() {
		return nil, false
	}
	if g1.NumEdges() == 0 {
		// Empty pattern trivially embeds; map nothing.
		m := make([]tgraph.NodeID, g1.NumNodes())
		for i := range m {
			m[i] = -1
		}
		return m, true
	}
	m := &matcher{g1: g1, g2: g2, stats: stats}
	m.init()
	// Pruner 1 (label sequence test): necessary conditions checked on label
	// projections before any mapping enumeration.
	if !isLabelSubsequence(labelsOf(g1, m.nseq), labelsOf(g2, m.enh)) {
		stats.LabelSeqRejects++
		return nil, false
	}
	if !m.edgeLabelSubsequence() {
		stats.LabelSeqRejects++
		return nil, false
	}
	if m.search(0, 0) {
		return m.mapping, true
	}
	return nil, false
}

type matcher struct {
	g1, g2  *tgraph.Pattern
	stats   *Stats
	nseq    []tgraph.NodeID // nodeseq(g1)
	enh     []tgraph.NodeID // enhseq(g2)
	mapping []tgraph.NodeID // g1 node -> g2 node (-1 unset)
	used    []bool          // g2 node already targeted
	out1    []int16
	in1     []int16
	out2    []int16
	in2     []int16
	// failed maps a serialized partial node mapping (prefix) to the smallest
	// enhseq position from which completion is known to fail (pruner 3).
	failed map[string]int
}

func (m *matcher) init() {
	m.nseq = NodeSeq(m.g1)
	m.enh = EnhSeq(m.g2)
	m.mapping = make([]tgraph.NodeID, m.g1.NumNodes())
	for i := range m.mapping {
		m.mapping[i] = -1
	}
	m.used = make([]bool, m.g2.NumNodes())
	m.out1, m.in1 = degrees(m.g1)
	m.out2, m.in2 = degrees(m.g2)
	// m.failed is allocated lazily on the first recorded failure: most
	// tests resolve without ever needing prefix memoization.
}

func degrees(p *tgraph.Pattern) (out, in []int16) {
	out = make([]int16, p.NumNodes())
	in = make([]int16, p.NumNodes())
	for _, e := range p.Edges() {
		out[e.Src]++
		in[e.Dst]++
	}
	return out, in
}

// edgeLabelSubsequence checks that the label-pair projection of edgeseq(g1)
// is a subsequence of edgeseq(g2)'s projection (part of pruner 1).
func (m *matcher) edgeLabelSubsequence() bool {
	e1, e2 := m.g1.Edges(), m.g2.Edges()
	i := 0
	for j := 0; i < len(e1) && j < len(e2); j++ {
		if m.g1.LabelOf(e1[i].Src) == m.g2.LabelOf(e2[j].Src) &&
			m.g1.LabelOf(e1[i].Dst) == m.g2.LabelOf(e2[j].Dst) {
			i++
		}
	}
	return i == len(e1)
}

// prefixKey serializes the mapping of the first i nodeseq entries.
func (m *matcher) prefixKey(i int) string {
	buf := make([]byte, 0, 4*i)
	for k := 0; k < i; k++ {
		v := m.mapping[m.nseq[k]]
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// search tries to map nodeseq[i:] into enh[j:].
func (m *matcher) search(i, j int) bool {
	if i == len(m.nseq) {
		m.stats.EdgeChecks++
		return m.edgeCheck()
	}
	var key string
	if m.failed != nil {
		key = m.prefixKey(i)
		if fj, ok := m.failed[key]; ok && j >= fj {
			m.stats.PrefixPrunes++
			return false
		}
	}
	u := m.nseq[i]
	lu := m.g1.LabelOf(u)
	limit := len(m.enh) - (len(m.nseq) - i)
	tried := false
	for k := j; k <= limit; k++ {
		v := m.enh[k]
		if m.used[v] || m.g2.LabelOf(v) != lu {
			continue
		}
		// Pruner 2 (local information match): degree feasibility.
		if m.out2[v] < m.out1[u] || m.in2[v] < m.in1[u] {
			continue
		}
		m.stats.MappingsTried++
		tried = true
		m.mapping[u] = v
		m.used[v] = true
		if m.search(i+1, k+1) {
			return true
		}
		m.mapping[u] = -1
		m.used[v] = false
	}
	// Pruner 3 (prefix pruning): remember the smallest position from which
	// this partial mapping failed. Only worth recording when the subtree
	// actually branched; pure label misses recur cheaply anyway.
	if tried {
		if m.failed == nil {
			m.failed = make(map[string]int)
		}
		if key == "" {
			key = m.prefixKey(i)
		}
		if old, ok := m.failed[key]; !ok || j < old {
			m.failed[key] = j
		}
	}
	return false
}

// edgeCheck verifies fs(edgeseq(g1)) ⊑ edgeseq(g2) for the completed node
// mapping. Greedy scanning is exact for subsequence containment.
func (m *matcher) edgeCheck() bool {
	e1, e2 := m.g1.Edges(), m.g2.Edges()
	i := 0
	for j := 0; i < len(e1) && j < len(e2); j++ {
		if m.mapping[e1[i].Src] == e2[j].Src && m.mapping[e1[i].Dst] == e2[j].Dst {
			i++
		}
	}
	return i == len(e1)
}
